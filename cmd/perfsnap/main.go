// Command perfsnap records the repo's headline micro-benchmarks as a
// machine-readable JSON snapshot, so successive PRs can diff the
// performance trajectory of the hot paths instead of eyeballing bench
// logs. It shells out to `go test -bench` for the benchmark sets named
// below, parses the standard benchmark output, runs the simulated
// failover sweep (leaderless-window percentiles with the planned-handover
// plane on versus off), and writes one JSON file (default BENCH_pr9.json,
// the current snapshot, recorded with the observability plane's hot-path
// instrumentation wired in; BENCH_pr8.json and earlier are baselines
// kept for comparison — checking the current tree against BENCH_pr8.json
// measures what the instrumentation costs).
//
// Usage:
//
//	go run ./cmd/perfsnap [-out BENCH_pr9.json] [-benchtime 1s]
//	go run ./cmd/perfsnap -check BENCH_pr9.json [-factor 2] [-benchtime 200ms]
//
// -check is the CI bench-regression smoke: it re-runs the gate
// benchmarks (LeaderQuery, MonitorObserve, Fanout, and the batched UDP
// receive drain) and fails if any is more than -factor times slower
// than the committed snapshot — so a reintroduced hot-path regression
// fails the build instead of drifting until someone profiles.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"stableleader/sim"
)

// suite is one `go test -bench` invocation.
type suite struct {
	Pkg   string // package path relative to the module root
	Bench string // -bench regexp
}

// suites are the hot-path benchmarks worth tracking across PRs: the
// wait-free read plane against its loop-serialised baseline, the failure
// detector's per-heartbeat cost, the timer wheel primitives, the client
// plane's two hot paths — the client-side cached leader read and the
// server-side snapshot fan-out per subscriber — and the sharded runtime's
// saturation sweep (concurrent and per-shard-slice modes).
var suites = []suite{
	{Pkg: ".", Bench: "LeaderQuery|StatusQuery"},
	{Pkg: "./internal/fd", Bench: "MonitorObserve"},
	{Pkg: "./internal/timerwheel", Bench: "ScheduleRearm|AdvanceSteadyState"},
	{Pkg: "./client", Bench: "ClientLeaderQuery"},
	{Pkg: "./internal/subs", Bench: "Fanout"},
	{Pkg: ".", Bench: "Saturation"},
	{Pkg: "./transport", Bench: "UDPReceive|UDPSaturation|UDPRecvDrain"},
}

// gateSuites are the -check regression gates: the cheapest benchmarks
// guarding the three hottest paths (wait-free reads, FD heartbeat
// observation, client-plane fan-out).
var gateSuites = []suite{
	{Pkg: ".", Bench: "LeaderQuery$"},
	{Pkg: "./internal/fd", Bench: "MonitorObserve$"},
	{Pkg: "./internal/subs", Bench: "Fanout$"},
	{Pkg: "./transport", Bench: "UDPRecvDrain/mode=batched$"},
}

// gateNames are the benchmark names the gates compare.
var gateNames = []string{"LeaderQuery", "MonitorObserve", "Fanout", "UDPRecvDrain/mode=batched"}

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// snapshot is the file layout.
type snapshot struct {
	Schema     string             `json:"schema"`
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	Benchmarks []result           `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived"`
}

func main() {
	out := flag.String("out", "BENCH_pr9.json", "output file")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	check := flag.String("check", "", "committed snapshot to gate against (CI regression smoke)")
	factor := flag.Float64("factor", 2, "allowed ns/op slowdown factor in -check mode")
	flag.Parse()

	if *check != "" {
		if err := runCheck(*check, *factor, *benchtime); err != nil {
			log.Fatalf("perfsnap: %v", err)
		}
		return
	}

	snap := snapshot{
		Schema:    "stableleader-bench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Derived:   map[string]float64{},
	}
	for _, s := range suites {
		rs, err := runSuite(s, *benchtime)
		if err != nil {
			log.Fatalf("perfsnap: %s: %v", s.Pkg, err)
		}
		snap.Benchmarks = append(snap.Benchmarks, rs...)
	}

	ns := map[string]float64{}
	for _, r := range snap.Benchmarks {
		ns[r.Name] = r.NsPerOp
	}
	// Derived headline ratios: how much the wait-free paths buy over the
	// loop-serialised ones.
	if a, b := ns["LeaderQuery"], ns["LeaderQuerySync"]; a > 0 && b > 0 {
		snap.Derived["leader_query_speedup_vs_sync"] = b / a
	}
	if a, b := ns["StatusQuery"], ns["StatusQuerySync"]; a > 0 && b > 0 {
		snap.Derived["status_query_speedup_vs_sync"] = b / a
	}
	// Sharded-runtime saturation: measured concurrent throughput per
	// shard count, plus the modeled aggregate capacity — shards share no
	// locks, so on a machine with at least N cores the aggregate is N ×
	// the per-shard-slice saturation throughput. The modeled figure is
	// what the sweep's speedup headline uses: the recording host may have
	// fewer cores than shards (CI containers often pin one), in which
	// case the concurrent figures cannot express the parallelism that the
	// slice measurements prove is there.
	for _, n := range []int{1, 2, 4, 8} {
		if v := ns[fmt.Sprintf("Saturation/shards=%d", n)]; v > 0 {
			snap.Derived[fmt.Sprintf("saturation_concurrent_msgs_per_sec_%dshards", n)] = 1e9 / v
		}
	}
	for _, n := range []int{2, 4, 8} {
		if v := ns[fmt.Sprintf("SaturationShardSlice/shards=%d", n)]; v > 0 {
			snap.Derived[fmt.Sprintf("saturation_modeled_capacity_msgs_per_sec_%dshards", n)] =
				float64(n) * 1e9 / v
		}
	}
	if base := ns["Saturation/shards=1"]; base > 0 {
		if cap8 := snap.Derived["saturation_modeled_capacity_msgs_per_sec_8shards"]; cap8 > 0 {
			snap.Derived["saturation_speedup_8shards_vs_1"] = cap8 / (1e9 / base)
		}
	}
	// Syscall-batched packet plane: socket-level throughput, batched vs
	// the forced classic one-datagram-one-syscall path on the identical
	// workload. The wall-clock ratio is host-dependent — it scales with
	// the kernel's syscall entry cost (KPTI etc.), while the underlying
	// syscalls-per-datagram reduction (~32x, see pkts/recvcall in the
	// bench output) is structural.
	for _, m := range []string{"batched", "classic"} {
		if v := ns["UDPSaturation/mode="+m]; v > 0 {
			snap.Derived["udp_saturation_msgs_per_sec_"+m] = 1e9 / v
		}
		if v := ns["UDPRecvDrain/mode="+m]; v > 0 {
			snap.Derived["udp_recv_drain_msgs_per_sec_"+m] = 1e9 / v
		}
	}
	if a, b := ns["UDPSaturation/mode=batched"], ns["UDPSaturation/mode=classic"]; a > 0 && b > 0 {
		snap.Derived["udp_saturation_speedup_batched_vs_classic"] = b / a
	}
	if a, b := ns["UDPRecvDrain/mode=batched"], ns["UDPRecvDrain/mode=classic"]; a > 0 && b > 0 {
		snap.Derived["udp_recv_drain_speedup_batched_vs_classic"] = b / a
	}
	// Simulated failover sweep: the planned-handover plane's leaderless
	// window percentiles and dual-leader (split-brain) integrals, standby
	// on versus off (virtual time: seconds of wall clock).
	if err := addFailoverDerived(snap.Derived); err != nil {
		log.Fatalf("perfsnap: failover sweep: %v", err)
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatalf("perfsnap: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("perfsnap: %v", err)
	}
	fmt.Printf("perfsnap: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// addFailoverDerived runs the sim failover sweep and records one
// leaderless-window p50/p99 and dual-leader figure per (series, setting)
// cell, plus the headline improvement ratio the PR's acceptance gate
// asserts (p99 over a graceful rolling restart, reactive vs handover).
func addFailoverDerived(d map[string]float64) error {
	exp, err := sim.Failover(sim.Options{Duration: 5 * time.Minute, Seed: 1})
	if err != nil {
		return err
	}
	for _, c := range exp.Cells {
		key := strings.ReplaceAll(c.Series+"_"+c.Setting, "-", "_")
		m := c.Result.Metrics
		d["sim_leaderless_p50_ms_"+key] = float64(m.LeaderlessP50) / 1e6
		d["sim_leaderless_p99_ms_"+key] = float64(m.LeaderlessP99) / 1e6
		d["sim_dual_leader_ms_"+key] = float64(m.DualLeaderTime) / 1e6
	}
	a := d["sim_leaderless_p99_ms_handover_rolling_restart"]
	b := d["sim_leaderless_p99_ms_reactive_rolling_restart"]
	if a > 0 && b > 0 {
		d["sim_leaderless_p99_improvement_rolling_restart"] = b / a
	}
	return nil
}

// runCheck re-runs the gate benchmarks and compares against the committed
// snapshot. Allocation counts gate exactly (a new allocation on a
// zero-alloc path is a regression however fast it runs); ns/op gates at
// the slowdown factor, leaving room for machine-to-machine variance.
func runCheck(path string, factor float64, benchtime string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed snapshot
	if err := json.Unmarshal(raw, &committed); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	want := map[string]result{}
	for _, r := range committed.Benchmarks {
		want[r.Name] = r
	}

	var got []result
	for _, s := range gateSuites {
		rs, err := runSuite(s, benchtime)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Pkg, err)
		}
		got = append(got, rs...)
	}
	byName := map[string]result{}
	for _, r := range got {
		byName[r.Name] = r
	}

	failed := false
	for _, name := range gateNames {
		w, ok := want[name]
		if !ok {
			return fmt.Errorf("committed snapshot %s lacks benchmark %q", path, name)
		}
		g, ok := byName[name]
		if !ok {
			return fmt.Errorf("gate benchmark %q did not run", name)
		}
		switch {
		case g.NsPerOp > w.NsPerOp*factor:
			fmt.Printf("FAIL %s: %.1f ns/op vs committed %.1f (allowed %.1fx)\n",
				name, g.NsPerOp, w.NsPerOp, factor)
			failed = true
		case g.AllocsPerOp > w.AllocsPerOp:
			fmt.Printf("FAIL %s: %d allocs/op vs committed %d\n",
				name, g.AllocsPerOp, w.AllocsPerOp)
			failed = true
		default:
			fmt.Printf("ok   %s: %.1f ns/op (committed %.1f), %d allocs/op (committed %d)\n",
				name, g.NsPerOp, w.NsPerOp, g.AllocsPerOp, w.AllocsPerOp)
		}
	}
	if failed {
		return fmt.Errorf("bench regression gate failed against %s", path)
	}
	fmt.Printf("perfsnap: all %d gates within %.1fx of %s\n", len(gateNames), factor, path)
	return nil
}

// runSuite executes one bench invocation and parses its output.
func runSuite(s suite, benchtime string) ([]result, error) {
	cmd := exec.Command("go", "test", "-run=NONE",
		"-bench="+s.Bench, "-benchmem", "-benchtime="+benchtime, "-count=1", s.Pkg)
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	var rs []result
	sc := bufio.NewScanner(&outBuf)
	for sc.Scan() {
		if r, ok := parseBenchLine(s.Pkg, sc.Text()); ok {
			rs = append(rs, r)
		}
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q", s.Bench)
	}
	return rs, sc.Err()
}

// parseBenchLine decodes one standard benchmark output line:
//
//	BenchmarkLeaderQuery-8   100000000   13.42 ns/op   0 B/op   0 allocs/op
//
// Extra custom metrics (the saturation benches report a groups column)
// may precede the -benchmem pair; the B/op and allocs/op fields are
// located by their unit labels, not by position.
func parseBenchLine(pkg, line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 8 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip the GOMAXPROCS suffix
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	nsop, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil || f[3] != "ns/op" {
		return result{}, false
	}
	var bop, aop int64
	var haveB, haveA bool
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		switch f[i+1] {
		case "B/op":
			bop, haveB = int64(v), true
		case "allocs/op":
			aop, haveA = int64(v), true
		}
	}
	if !haveB || !haveA {
		return result{}, false
	}
	return result{
		Name: name, Pkg: pkg,
		Iterations: iters, NsPerOp: nsop, BytesPerOp: bop, AllocsPerOp: aop,
	}, true
}
