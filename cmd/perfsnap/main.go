// Command perfsnap records the repo's headline micro-benchmarks as a
// machine-readable JSON snapshot, so successive PRs can diff the
// performance trajectory of the hot paths instead of eyeballing bench
// logs. It shells out to `go test -bench` for the benchmark sets named
// below, parses the standard benchmark output, and writes one JSON file
// (default BENCH_pr4.json, the snapshot this PR introduces).
//
// Usage:
//
//	go run ./cmd/perfsnap [-out BENCH_pr4.json] [-benchtime 1s]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// suite is one `go test -bench` invocation.
type suite struct {
	Pkg   string // package path relative to the module root
	Bench string // -bench regexp
}

// suites are the hot-path benchmarks worth tracking across PRs: the
// wait-free read plane against its loop-serialised baseline, the failure
// detector's per-heartbeat cost, the timer wheel primitives, and the
// client plane's two hot paths — the client-side cached leader read and
// the server-side snapshot fan-out per subscriber.
var suites = []suite{
	{Pkg: ".", Bench: "LeaderQuery|StatusQuery"},
	{Pkg: "./internal/fd", Bench: "MonitorObserve"},
	{Pkg: "./internal/timerwheel", Bench: "ScheduleRearm|AdvanceSteadyState"},
	{Pkg: "./client", Bench: "ClientLeaderQuery"},
	{Pkg: "./internal/subs", Bench: "Fanout"},
}

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// snapshot is the file layout.
type snapshot struct {
	Schema     string             `json:"schema"`
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Benchmarks []result           `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived"`
}

func main() {
	out := flag.String("out", "BENCH_pr4.json", "output file")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	flag.Parse()

	snap := snapshot{
		Schema:    "stableleader-bench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Derived:   map[string]float64{},
	}
	for _, s := range suites {
		rs, err := runSuite(s, *benchtime)
		if err != nil {
			log.Fatalf("perfsnap: %s: %v", s.Pkg, err)
		}
		snap.Benchmarks = append(snap.Benchmarks, rs...)
	}

	// Derived headline ratios: how much the wait-free paths buy over the
	// loop-serialised ones.
	ns := map[string]float64{}
	for _, r := range snap.Benchmarks {
		ns[r.Name] = r.NsPerOp
	}
	if a, b := ns["LeaderQuery"], ns["LeaderQuerySync"]; a > 0 && b > 0 {
		snap.Derived["leader_query_speedup_vs_sync"] = b / a
	}
	if a, b := ns["StatusQuery"], ns["StatusQuerySync"]; a > 0 && b > 0 {
		snap.Derived["status_query_speedup_vs_sync"] = b / a
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatalf("perfsnap: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("perfsnap: %v", err)
	}
	fmt.Printf("perfsnap: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// runSuite executes one bench invocation and parses its output.
func runSuite(s suite, benchtime string) ([]result, error) {
	cmd := exec.Command("go", "test", "-run=NONE",
		"-bench="+s.Bench, "-benchmem", "-benchtime="+benchtime, "-count=1", s.Pkg)
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	var rs []result
	sc := bufio.NewScanner(&outBuf)
	for sc.Scan() {
		if r, ok := parseBenchLine(s.Pkg, sc.Text()); ok {
			rs = append(rs, r)
		}
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched %q", s.Bench)
	}
	return rs, sc.Err()
}

// parseBenchLine decodes one standard benchmark output line:
//
//	BenchmarkLeaderQuery-8   100000000   13.42 ns/op   0 B/op   0 allocs/op
func parseBenchLine(pkg, line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 8 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip the GOMAXPROCS suffix
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	nsop, err2 := strconv.ParseFloat(f[2], 64)
	bop, err3 := strconv.ParseInt(f[4], 10, 64)
	aop, err4 := strconv.ParseInt(f[6], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
		f[3] != "ns/op" || f[5] != "B/op" || f[7] != "allocs/op" {
		return result{}, false
	}
	return result{
		Name: name, Pkg: pkg,
		Iterations: iters, NsPerOp: nsop, BytesPerOp: bop, AllocsPerOp: aop,
	}, true
}
