// Leadervet is the repository's static-analysis gate: a go/analysis
// multichecker enforcing the concurrency and hot-path invariants the
// stable-leader service relies on (see DESIGN.md, "Invariants &
// directives").
//
// It is built as a vet tool and run through the go command, which
// drives it package by package with facts flowing across package
// boundaries:
//
//	go build -o bin/leadervet ./cmd/leadervet
//	go vet -vettool=bin/leadervet ./...
//
// Analyzers:
//
//	loopowned — //leadervet:loopOwned fields are only touched on the
//	            owning event loop
//	cowcheck  — values published via atomic.Pointer are copy-on-write
//	poolcheck — pooled wire values are released exactly once per path
//	hotpath   — //leadervet:hotpath functions stay allocation-free
//
// Besides the vet-tool protocol, two convenience modes exist:
//
//	leadervet -list [-json]     describe the analyzers and exit
//	leadervet -json [packages]  run go vet over the packages and emit
//	                            the diagnostics as one JSON object on
//	                            stdout (package → analyzer → findings)
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"stableleader/internal/analysis/cowcheck"
	"stableleader/internal/analysis/hotpath"
	"stableleader/internal/analysis/loopowned"
	"stableleader/internal/analysis/poolcheck"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		loopowned.Analyzer,
		cowcheck.Analyzer,
		poolcheck.Analyzer,
		hotpath.Analyzer,
	}
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && !vetDriven(args) {
		switch strings.TrimLeft(args[0], "-") {
		case "list":
			listMode(hasFlag(args[1:], "json"))
			return
		case "json":
			os.Exit(jsonMode(args[1:]))
		}
	}
	unitchecker.Main(analyzers()...)
}

// vetDriven reports whether this invocation came from the go command's
// vet-tool protocol rather than a human: go vet forwards its own flags
// (-json included) to the tool ahead of the JSON config file, so a bare
// "-json" is only ours when no unit config follows.
func vetDriven(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

func hasFlag(args []string, name string) bool {
	for _, a := range args {
		if strings.TrimLeft(a, "-") == name {
			return true
		}
	}
	return false
}

// listMode describes the suite, as text or JSON.
func listMode(asJSON bool) {
	type entry struct {
		Name string `json:"name"`
		Doc  string `json:"doc"`
		URL  string `json:"url,omitempty"`
	}
	var entries []entry
	for _, a := range analyzers() {
		entries = append(entries, entry{Name: a.Name, Doc: a.Doc, URL: a.URL})
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(entries); err != nil {
			fmt.Fprintln(os.Stderr, "leadervet:", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range entries {
		fmt.Printf("%-10s %s\n", e.Name, e.Doc)
	}
}

// jsonMode re-runs this binary under `go vet -json` and forwards the
// merged diagnostics to stdout. go vet emits one JSON object per
// package on stderr, interleaved with '#' comment lines; this strips
// the comments and merges the objects.
func jsonMode(pkgs []string) int {
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "leadervet:", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self, "-json"}, pkgs...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		// In -json mode go vet only fails on build/config errors, not
		// on findings; surface whatever it printed.
		fmt.Fprintf(os.Stderr, "leadervet: go vet: %v\n%s", err, out)
		return 1
	}
	merged := make(map[string]json.RawMessage)
	dec := json.NewDecoder(strings.NewReader(stripComments(string(out))))
	for dec.More() {
		var chunk map[string]json.RawMessage
		if err := dec.Decode(&chunk); err != nil {
			fmt.Fprintln(os.Stderr, "leadervet: parsing go vet output:", err)
			return 1
		}
		for pkg, diags := range chunk {
			merged[pkg] = diags
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(merged); err != nil {
		fmt.Fprintln(os.Stderr, "leadervet:", err)
		return 1
	}
	return 0
}

// stripComments removes go vet's '# pkg' progress lines, which are not
// JSON.
func stripComments(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}
