package stableleader_test

import (
	"fmt"
	"log"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

// Example shows the shortest path to an elected leader: two services on an
// in-process network join the same group and watch leadership.
func Example() {
	hub := transport.NewInproc(nil)
	spec := qos.Spec{ // detect crashes within 200ms
		DetectionTime:     200 * time.Millisecond,
		MistakeRecurrence: time.Hour,
		QueryAccuracy:     0.999,
	}
	seeds := []id.Process{"a", "b"}
	var groups []*stableleader.Group
	for _, name := range seeds {
		svc, err := stableleader.New(stableleader.Config{ID: name, Transport: hub.Endpoint(name)})
		if err != nil {
			log.Fatal(err)
		}
		defer svc.Close(true)
		grp, err := svc.Join("demo", stableleader.JoinOptions{
			Candidate: true, QoS: spec, Seeds: seeds,
		})
		if err != nil {
			log.Fatal(err)
		}
		groups = append(groups, grp)
	}
	// Query mode: poll until both agree on an elected leader.
	for {
		a, _ := groups[0].Leader()
		b, _ := groups[1].Leader()
		if a.Elected && b.Elected && a.Leader == b.Leader {
			fmt.Println("agreed on a leader:", a.Leader == "a" || a.Leader == "b")
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Output: agreed on a leader: true
}

// ExampleGroup_Changes demonstrates interrupt-mode notifications: the
// channel delivers a LeaderInfo on every change of the local view.
func ExampleGroup_Changes() {
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New(stableleader.Config{ID: "solo", Transport: hub.Endpoint("solo")})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close(true)
	grp, err := svc.Join("demo", stableleader.JoinOptions{
		Candidate: true,
		QoS: qos.Spec{
			DetectionTime:     50 * time.Millisecond,
			MistakeRecurrence: time.Hour,
			QueryAccuracy:     0.999,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// A lone candidate elects itself once its startup grace confirms no
	// incumbent exists.
	for info := range grp.Changes() {
		if info.Elected {
			fmt.Println("leader:", info.Leader)
			return
		}
	}
	// Output: leader: solo
}

// ExampleParseAlgorithm maps the paper's service names onto the cores.
func ExampleParseAlgorithm() {
	for _, name := range []string{"s1", "s2", "s3"} {
		algo, err := stableleader.ParseAlgorithm(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s = %v\n", name, algo)
	}
	// Output:
	// s1 = omega-id
	// s2 = omega-lc
	// s3 = omega-l
}
