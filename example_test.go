package stableleader_test

import (
	"context"
	"fmt"
	"log"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/qos"
	"stableleader/transport"
)

// Example shows the shortest path to an elected leader: two services on an
// in-process network join the same group and watch leadership.
func Example() {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	spec := qos.Spec{ // detect crashes within 200ms
		DetectionTime:     200 * time.Millisecond,
		MistakeRecurrence: time.Hour,
		QueryAccuracy:     0.999,
	}
	seeds := []id.Process{"a", "b"}
	var groups []*stableleader.Group
	for _, name := range seeds {
		svc, err := stableleader.New(name, hub.Endpoint(name))
		if err != nil {
			log.Fatal(err)
		}
		defer svc.Close(ctx)
		grp, err := svc.Join(ctx, "demo",
			stableleader.AsCandidate(),
			stableleader.WithQoS(spec),
			stableleader.WithSeeds(seeds...),
		)
		if err != nil {
			log.Fatal(err)
		}
		groups = append(groups, grp)
	}
	// Query mode: poll until both agree on an elected leader.
	for {
		a, _ := groups[0].Leader(ctx)
		b, _ := groups[1].Leader(ctx)
		if a.Elected && b.Elected && a.Leader == b.Leader {
			fmt.Println("agreed on a leader:", a.Leader == "a" || a.Leader == "b")
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Output: agreed on a leader: true
}

// ExampleGroup_Watch demonstrates interrupt-mode notifications: the event
// stream delivers a LeaderChanged on every change of the local view.
func ExampleGroup_Watch() {
	ctx := context.Background()
	hub := transport.NewInproc(nil)
	svc, err := stableleader.New("solo", hub.Endpoint("solo"))
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close(ctx)
	grp, err := svc.Join(ctx, "demo",
		stableleader.AsCandidate(),
		stableleader.WithQoS(qos.Spec{
			DetectionTime:     50 * time.Millisecond,
			MistakeRecurrence: time.Hour,
			QueryAccuracy:     0.999,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	// A lone candidate elects itself once its startup grace confirms no
	// incumbent exists.
	for ev := range grp.Watch(ctx, stableleader.WithEventFilter(stableleader.KindLeaderChanged)) {
		if lc := ev.(stableleader.LeaderChanged); lc.Info.Elected {
			fmt.Println("leader:", lc.Info.Leader)
			return
		}
	}
	// Output: leader: solo
}

// ExampleParseAlgorithm maps the paper's service names onto the cores.
func ExampleParseAlgorithm() {
	for _, name := range []string{"s1", "s2", "s3"} {
		algo, err := stableleader.ParseAlgorithm(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s = %v\n", name, algo)
	}
	// Output:
	// s1 = omega-id
	// s2 = omega-lc
	// s3 = omega-l
}
