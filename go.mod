module stableleader

go 1.24
