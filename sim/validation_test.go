package sim

import (
	"testing"
	"time"

	stableleader "stableleader"
)

func TestPaperScaleCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute paper-scale validation")
	}
	for _, tc := range []struct {
		algo stableleader.Algorithm
		link LinkModel
	}{
		{stableleader.OmegaID, LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.1}},
		{stableleader.OmegaLC, LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.1}},
		{stableleader.OmegaL, LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.1}},
		{stableleader.OmegaID, LinkModel{MeanDelay: 25 * time.Microsecond, Loss: 0}},
		{stableleader.OmegaLC, LinkModel{MeanDelay: 25 * time.Microsecond, Loss: 0}},
		{stableleader.OmegaL, LinkModel{MeanDelay: 25 * time.Microsecond, Loss: 0}},
	} {
		res, err := Run(Scenario{
			N:             12,
			Algorithm:     tc.algo,
			Link:          tc.link,
			ProcessFaults: &Faults{MTBF: 600 * time.Second, MTTR: 5 * time.Second},
			Duration:      1 * time.Hour,
			Seed:          11,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Metrics
		t.Logf("%-8s %-14s Tr=%7.3fs±%.3f (n=%2d) λu=%5.2f/h Pleader=%.4f%% cpu=%.3f%% kb/s=%6.2f msgs/s=%6.1f events=%9d wall=%v",
			tc.algo, tc.link, m.TrMean.Seconds(), m.TrCI95.Seconds(), m.TrSamples,
			m.MistakesPerHour, 100*m.Pleader, res.CPUPercent, res.KBPerSec, res.MsgsPerSec,
			res.EventsSimulated, res.WallTime)
	}
}
