package sim

import (
	"testing"
	"time"

	stableleader "stableleader"
)

// TestClientFanoutCoalescingReduction is the acceptance property of the
// remote client plane: with 1000 simulated clients each subscribed to 8
// groups on 3 service nodes, the coalesced fan-out (snapshots, renewals
// and subscribes merged per client) must cut system-wide datagrams by at
// least 4x versus naive per-message sends — without changing the elected
// outcome.
func TestClientFanoutCoalescingReduction(t *testing.T) {
	run := func(disable bool) Result {
		res, err := Run(Scenario{
			Name:              "clients-accept",
			N:                 3,
			Groups:            8,
			Clients:           1000,
			Algorithm:         stableleader.OmegaL,
			Duration:          90 * time.Second,
			Seed:              11,
			DisableCoalescing: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on := run(false)
	off := run(true)
	secs := (on.Scenario.Warmup + on.Scenario.Duration).Seconds()
	t.Logf("coalesced:   %9.1f total dgrams/s %9.1f total msgs/s",
		float64(on.TotalDatagramsSent)/secs, float64(on.TotalMsgsSent)/secs)
	t.Logf("uncoalesced: %9.1f total dgrams/s %9.1f total msgs/s",
		float64(off.TotalDatagramsSent)/secs, float64(off.TotalMsgsSent)/secs)

	if on.TotalDatagramsSent <= 0 || off.TotalDatagramsSent <= 0 {
		t.Fatal("no traffic measured")
	}
	ratio := float64(off.TotalDatagramsSent) / float64(on.TotalDatagramsSent)
	if ratio < 4 {
		t.Errorf("datagram reduction = %.2fx, want >= 4x at 1000 clients x 8 groups", ratio)
	}
	// The protocol outcome is untouched by the client plane: the observed
	// group stays available and mistake-free in both variants.
	for _, r := range []Result{on, off} {
		if r.Metrics.Pleader < 0.999 {
			t.Errorf("%s: Pleader = %.6f, want ~1 on a clean LAN", r.Scenario.Name, r.Metrics.Pleader)
		}
		if r.Metrics.Demotions != 0 {
			t.Errorf("%s: %d demotions on a clean LAN", r.Scenario.Name, r.Metrics.Demotions)
		}
	}
}

// TestClientChurnLeasesExpire exercises the server-side lease lifecycle
// under client churn: crashed clients' leases must expire (no unbounded
// registry growth), and restarted clients re-register under their new
// incarnation.
func TestClientChurnLeasesExpire(t *testing.T) {
	res, err := Run(Scenario{
		Name:        "clients-churn",
		N:           3,
		Groups:      2,
		Clients:     50,
		ClientTTL:   5 * time.Second,
		ClientChurn: &Faults{MTBF: 30 * time.Second, MTTR: 10 * time.Second},
		Algorithm:   stableleader.OmegaL,
		Duration:    3 * time.Minute,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The churn must not destabilise the election.
	if res.Metrics.Demotions != 0 {
		t.Errorf("client churn caused %d demotions", res.Metrics.Demotions)
	}
	if res.Metrics.Pleader < 0.999 {
		t.Errorf("Pleader = %.6f under client churn", res.Metrics.Pleader)
	}
	// And the run must be reproducible: same scenario, same seed, same
	// traffic, bit for bit.
	res2, err := Run(Scenario{
		Name:        "clients-churn",
		N:           3,
		Groups:      2,
		Clients:     50,
		ClientTTL:   5 * time.Second,
		ClientChurn: &Faults{MTBF: 30 * time.Second, MTTR: 10 * time.Second},
		Algorithm:   stableleader.OmegaL,
		Duration:    3 * time.Minute,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDatagramsSent != res2.TotalDatagramsSent ||
		res.TotalMsgsSent != res2.TotalMsgsSent ||
		res.EventsSimulated != res2.EventsSimulated {
		t.Errorf("client-plane simulation is not deterministic: %d/%d/%d vs %d/%d/%d",
			res.TotalDatagramsSent, res.TotalMsgsSent, res.EventsSimulated,
			res2.TotalDatagramsSent, res2.TotalMsgsSent, res2.EventsSimulated)
	}
}

// TestClientExperimentDispatch smoke-tests the -figure clients wiring at
// a tiny scale.
func TestClientExperimentDispatch(t *testing.T) {
	exp, err := RunExperiment("clients", Options{
		Duration: 30 * time.Second,
		Warmup:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "clients" || len(exp.Cells) != 6 {
		t.Fatalf("experiment = %s with %d cells, want clients with 6", exp.ID, len(exp.Cells))
	}
	if s := exp.String(); s == "" {
		t.Error("empty rendering")
	}
}
