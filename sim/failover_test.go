package sim

import (
	"testing"
	"time"

	stableleader "stableleader"
)

// failoverBase is the common shape of the failover scenarios: a small group
// on the paper's LAN, gracefully restarted one workstation at a time.
func failoverBase(name string) Scenario {
	return Scenario{
		Name:      name,
		N:         6,
		Algorithm: stableleader.OmegaL,
		Link:      LinkModel{MeanDelay: 25 * time.Microsecond},
		Duration:  5 * time.Minute,
		Warmup:    30 * time.Second,
		Seed:      11,
		RollingRestart: &RestartPlan{
			Start:    40 * time.Second,
			Every:    15 * time.Second,
			Downtime: 5 * time.Second,
			Rounds:   3,
		},
	}
}

// TestHandoverShrinksLeaderlessWindow is the PR's headline property: with
// the warm standby, a graceful departure hands leadership off in about one
// message delay, so the p99 leaderless window over a rolling restart of the
// whole group is at least 10x shorter than the reactive baseline's (which
// waits out the failure detector on every departure of the leader).
func TestHandoverShrinksLeaderlessWindow(t *testing.T) {
	with := failoverBase("failover/handover")
	without := failoverBase("failover/reactive")
	without.DisableHandover = true

	resWith, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	resWithout, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}

	p99With := resWith.Metrics.LeaderlessP99
	p99Without := resWithout.Metrics.LeaderlessP99
	t.Logf("handover: %d windows, p50=%v p99=%v", len(resWith.Metrics.Leaderless),
		resWith.Metrics.LeaderlessP50, p99With)
	t.Logf("reactive: %d windows, p50=%v p99=%v", len(resWithout.Metrics.Leaderless),
		resWithout.Metrics.LeaderlessP50, p99Without)

	if p99Without == 0 {
		t.Fatal("reactive baseline recorded no leaderless windows; the rolling restart never displaced the leader")
	}
	if p99With != 0 && p99Without < 10*p99With {
		t.Fatalf("planned handover p99 leaderless window %v not >=10x shorter than reactive %v",
			p99With, p99Without)
	}
	// A planned departure must never demote a live leader by mistake.
	if mph := resWith.Metrics.MistakesPerHour; mph != 0 {
		t.Fatalf("handover run made %v mistakes/hour, want 0", mph)
	}
}

// TestNoDualLeaderUnderPartitionHeal: severing the follower minority (no
// candidates among them) and healing it must never yield an interval with
// two simultaneous self-believed leaders.
func TestNoDualLeaderUnderPartitionHeal(t *testing.T) {
	sc := Scenario{
		Name:       "failover/partition-heal",
		N:          6,
		Candidates: 4,
		Algorithm:  stableleader.OmegaL,
		Link:       LinkModel{MeanDelay: 25 * time.Microsecond},
		Duration:   3 * time.Minute,
		Warmup:     30 * time.Second,
		Seed:       12,
		Partition:  &PartitionPlan{At: 60 * time.Second, Heal: 2 * time.Minute, Minority: 2},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DualLeaderTime != 0 {
		t.Fatalf("partition/heal run spent %v with two self-believed leaders, want 0",
			res.Metrics.DualLeaderTime)
	}
}

// TestNoDualLeaderUnderClockSkew: per-workstation clock skew shifts every
// timestamp the protocol exchanges; the handover grant is ranked relative
// to the departing leader's own accusation time, so skew must not open a
// dual-leader interval during planned handovers.
func TestNoDualLeaderUnderClockSkew(t *testing.T) {
	sc := failoverBase("failover/clock-skew")
	sc.Seed = 13
	sc.ClockSkew = 300 * time.Millisecond
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DualLeaderTime != 0 {
		t.Fatalf("clock-skew run spent %v with two self-believed leaders, want 0",
			res.Metrics.DualLeaderTime)
	}
	if res.Metrics.LeaderlessP99 > time.Second {
		t.Fatalf("clock-skew handovers left a %v p99 leaderless window, want <=1s",
			res.Metrics.LeaderlessP99)
	}
}
