package sim

import (
	"fmt"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/internal/core"
	"stableleader/internal/election"
	"stableleader/internal/metrics"
	"stableleader/internal/simnet"
	"stableleader/internal/wire"
	"stableleader/qos"
)

// shim logs ALIVE/RATE traffic on the w10->w05 and w05->w10 links.
type shim struct {
	inner *core.Node
	self  id.Process
	logf  func(string, ...interface{})
}

func (s *shim) HandleMessage(m wire.Message) {
	interesting := (s.self == "w05" && m.From() == "w10") || (s.self == "w10" && m.From() == "w05")
	if interesting {
		switch t := m.(type) {
		case *wire.Alive:
			s.logf("ALIVE %s->%s seq=%d interval=%v acc=%d", t.Sender, s.self, t.Seq, time.Duration(t.Interval), t.AccTime)
		case *wire.Rate:
			s.logf("RATE  %s->%s interval=%v", t.Sender, s.self, time.Duration(t.Interval))
		case *wire.Accuse:
			s.logf("ACCUSE %s->%s phase=%d", t.Sender, s.self, t.Phase)
		}
	}
	s.inner.HandleMessage(m)
}

// TestDebugSeedN replays the failing sweep cell with a view log around the
// demotion instant; temporary investigation helper.
func TestDebugSeedN(t *testing.T) {
	metrics.SetDebugDemotions(true)
	defer metrics.SetDebugDemotions(false)

	eng := simnet.NewEngine(1)
	net := simnet.NewNetwork(eng, simnet.LinkModel{MeanDelay: 10 * time.Millisecond, Loss: 0.1})
	var procs []id.Process
	for i := 0; i < 12; i++ {
		procs = append(procs, id.Process(fmt.Sprintf("w%02d", i+1)))
		net.Attach(procs[i])
	}
	obs := metrics.NewObserver("g", simnet.Epoch().Add(30*time.Second))
	runtimes := map[id.Process]*simnet.NodeRuntime{}
	crashed := map[id.Process]bool{}
	from, to := 1799.0, 1803.3 // log window (s) around the demotion at 1803.19
	logf := func(format string, args ...interface{}) {
		ts := eng.Now().Sub(simnet.Epoch()).Seconds()
		if ts >= from && ts <= to {
			fmt.Printf("%10.4fs  ", ts)
			fmt.Printf(format+"\n", args...)
		}
	}
	var start func(p id.Process)
	start = func(p id.Process) {
		if crashed[p] || runtimes[p] != nil {
			return
		}
		rt := simnet.NewNodeRuntime(net, p)
		runtimes[p] = rt
		node := core.NewNode(p, rt)
		net.SetUp(p, true, &shim{inner: node, self: p, logf: logf})
		obs.NodeUp(eng.Now(), p, node.Incarnation())
		logf("UP   %s", p)
		bound := rt
		eng.After(2*time.Second, func() {
			if runtimes[p] == bound {
				obs.MarkJoined(eng.Now(), p)
			}
		})
		_ = node.Join("g", core.JoinOptions{
			Candidate: true,
			Algorithm: election.Kind(stableleader.OmegaL),
			QoS:       qos.Default(),
			Seeds:     procs,
			OnLeaderChange: func(li core.LeaderInfo) {
				logf("VIEW %s -> %s/%v", p, li.Leader, li.Elected)
				obs.LeaderView(eng.Now(), p, li.Leader, li.Incarnation, li.Elected)
			},
		})
	}
	for i, p := range procs {
		p := p
		_ = i
		j := time.Duration(eng.Rand().Int63n(int64(100 * time.Millisecond)))
		eng.After(j, func() { start(p) })
	}
	for _, p := range procs {
		p := p
		simnet.ScheduleFaults(eng, simnet.FaultPlan{MTBF: 600 * time.Second, MTTR: 5 * time.Second},
			func() {
				crashed[p] = true
				if rt := runtimes[p]; rt != nil {
					rt.Shutdown()
					delete(runtimes, p)
				}
				net.SetUp(p, false, nil)
				obs.NodeDown(eng.Now(), p)
				logf("DOWN %s", p)
			},
			func() { crashed[p] = false; start(p) },
		)
	}
	eng.RunUntil(simnet.Epoch().Add(30*time.Second + 40*time.Minute))
	fmt.Println(obs.Finish(eng.Now()))
}
