package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"

	stableleader "stableleader"
	"stableleader/qos"
)

// TestDeterminism: a scenario is a pure function of its seed — the entire
// metric set must be bit-identical across runs, and different seeds must
// diverge.
func TestDeterminism(t *testing.T) {
	sc := Scenario{
		N:             6,
		Algorithm:     stableleader.OmegaL,
		Link:          LinkModel{MeanDelay: 10 * time.Millisecond, Loss: 0.05},
		ProcessFaults: &Faults{MTBF: 2 * time.Minute, MTTR: 5 * time.Second},
		Duration:      10 * time.Minute,
		Seed:          99,
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	a.WallTime, b.WallTime = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n%+v\nvs\n%+v", a.Metrics, b.Metrics)
	}
	sc.Seed = 100
	c, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.EventsSimulated == c.EventsSimulated && a.Metrics.Pleader == c.Metrics.Pleader {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// TestStabilityContrast is Figure 3/4's qualitative core at test scale:
// with frequent crash/recovery cycles, omega-id demotes healthy leaders
// while omega-l and omega-lc never do.
func TestStabilityContrast(t *testing.T) {
	base := Scenario{
		N:             6,
		Link:          LinkModel{MeanDelay: 10 * time.Millisecond, Loss: 0.01},
		ProcessFaults: &Faults{MTBF: 2 * time.Minute, MTTR: 5 * time.Second},
		Duration:      30 * time.Minute,
		Seed:          5,
	}
	run := func(algo stableleader.Algorithm) Result {
		sc := base
		sc.Algorithm = algo
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	s1 := run(stableleader.OmegaID)
	s2 := run(stableleader.OmegaLC)
	s3 := run(stableleader.OmegaL)
	if s1.Metrics.Demotions == 0 {
		t.Error("omega-id showed no unjustified demotions despite frequent recoveries; its instability should be visible")
	}
	if s2.Metrics.Demotions != 0 {
		t.Errorf("omega-lc demoted a live leader %d times; the paper reports zero", s2.Metrics.Demotions)
	}
	if s3.Metrics.Demotions != 0 {
		t.Errorf("omega-l demoted a live leader %d times; the paper reports zero", s3.Metrics.Demotions)
	}
}

// TestLinkCrashRobustnessContrast is Figure 7's qualitative core: under
// frequent total link outages, omega-lc's forwarding keeps availability
// clearly above omega-l's.
func TestLinkCrashRobustnessContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation")
	}
	base := Scenario{
		N:             12,
		Link:          LinkModel{MeanDelay: 25 * time.Microsecond},
		ProcessFaults: &Faults{MTBF: 600 * time.Second, MTTR: 5 * time.Second},
		LinkFaults:    &Faults{MTBF: 60 * time.Second, MTTR: 3 * time.Second},
		Duration:      20 * time.Minute,
		Seed:          7,
	}
	run := func(algo stableleader.Algorithm) Result {
		sc := base
		sc.Algorithm = algo
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	s2 := run(stableleader.OmegaLC)
	s3 := run(stableleader.OmegaL)
	t.Logf("S2: %v", s2.Metrics)
	t.Logf("S3: %v", s3.Metrics)
	if s2.Metrics.Pleader <= s3.Metrics.Pleader {
		t.Errorf("S2 availability (%.4f) should exceed S3's (%.4f) under crashing links",
			s2.Metrics.Pleader, s3.Metrics.Pleader)
	}
	if s2.Metrics.Pleader < 0.95 {
		t.Errorf("S2 availability %.4f; the paper reports ~0.988 in this regime", s2.Metrics.Pleader)
	}
	if s3.Metrics.Pleader > 0.95 {
		t.Errorf("S3 availability %.4f; the paper reports substantial degradation (~0.77)", s3.Metrics.Pleader)
	}
}

// TestDetectionBoundGovernsRecovery is Figure 8's qualitative core: Tr
// scales with the configured detection bound.
func TestDetectionBoundGovernsRecovery(t *testing.T) {
	run := func(td time.Duration) Result {
		spec := qos.Default()
		spec.DetectionTime = td
		res, err := Run(Scenario{
			N:             6,
			Algorithm:     stableleader.OmegaL,
			QoS:           spec,
			Link:          LinkModel{MeanDelay: 25 * time.Microsecond},
			ProcessFaults: &Faults{MTBF: 90 * time.Second, MTTR: 5 * time.Second},
			Duration:      30 * time.Minute,
			Seed:          3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(100 * time.Millisecond)
	slow := run(time.Second)
	if fast.Metrics.TrSamples == 0 || slow.Metrics.TrSamples == 0 {
		t.Fatal("no leader crashes sampled")
	}
	t.Logf("TdU=100ms: %v; TdU=1s: %v", fast.Metrics, slow.Metrics)
	if fast.Metrics.TrMean >= slow.Metrics.TrMean {
		t.Errorf("Tr with TdU=100ms (%v) should be far below Tr with TdU=1s (%v)",
			fast.Metrics.TrMean, slow.Metrics.TrMean)
	}
	if fast.Metrics.TrMean > 400*time.Millisecond {
		t.Errorf("Tr = %v with a 100ms bound; detection should dominate recovery", fast.Metrics.TrMean)
	}
	// Faster detection costs more traffic.
	if fast.KBPerSec <= slow.KBPerSec {
		t.Errorf("tighter QoS should cost more bandwidth: %v vs %v KB/s", fast.KBPerSec, slow.KBPerSec)
	}
}

// TestScalingShape is Figure 6's qualitative core: growing the group from
// 4 to 12 should grow S3's per-node traffic far slower than S2's.
func TestScalingShape(t *testing.T) {
	run := func(algo stableleader.Algorithm, n int) Result {
		res, err := Run(Scenario{
			N:             n,
			Algorithm:     algo,
			Link:          LinkModel{MeanDelay: 25 * time.Microsecond},
			ProcessFaults: &Faults{MTBF: 600 * time.Second, MTTR: 5 * time.Second},
			Duration:      10 * time.Minute,
			Seed:          4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	s2Growth := run(stableleader.OmegaLC, 12).KBPerSec / run(stableleader.OmegaLC, 4).KBPerSec
	s3Growth := run(stableleader.OmegaL, 12).KBPerSec / run(stableleader.OmegaL, 4).KBPerSec
	t.Logf("4->12 traffic growth: S2 %.2fx, S3 %.2fx", s2Growth, s3Growth)
	if s2Growth <= s3Growth {
		t.Errorf("S2's traffic must grow faster with n than S3's (%.2fx vs %.2fx)", s2Growth, s3Growth)
	}
	if s2Growth < 2.2 {
		t.Errorf("S2 grew only %.2fx from n=4 to n=12; expected near-quadratic growth", s2Growth)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Scenario{N: 3}); err == nil {
		t.Error("zero duration must be rejected")
	}
	bad := Scenario{N: 3, Duration: time.Minute, QoS: qos.Spec{DetectionTime: -1}}
	if _, err := Run(bad); err == nil {
		t.Error("invalid QoS must be rejected")
	}
}

func TestExperimentDispatch(t *testing.T) {
	if _, err := RunExperiment("nope", Options{}); err == nil {
		t.Error("unknown figure id must error")
	}
	ids := Experiments()
	if len(ids) != 10 {
		t.Errorf("Experiments() = %v", ids)
	}
	// A tiny real dispatch: figure 8 with minuscule cells exercises the
	// whole table pipeline.
	exp, err := RunExperiment("headline", Options{Duration: 30 * time.Second, Warmup: 5 * time.Second, N: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Cells) != 3 {
		t.Fatalf("headline cells = %d, want 3", len(exp.Cells))
	}
	s := exp.String()
	for _, want := range []string{"headline", "S1 (omega-id)", "S2 (omega-lc)", "S3 (omega-l)", "Pleader"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestLinkModelString(t *testing.T) {
	if got := (LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.1}).String(); got != "(100ms, 0.1)" {
		t.Errorf("String = %q", got)
	}
	if got := (LinkModel{MeanDelay: 25 * time.Microsecond}).String(); got != "(0.025ms, 0)" {
		t.Errorf("String = %q", got)
	}
}

func TestCandidateSubsetElection(t *testing.T) {
	// Restricting the election to 3 candidates out of 8 (the paper's t+1
	// candidates feature): leaders must only ever be candidates.
	res, err := Run(Scenario{
		N:             8,
		Candidates:    3,
		Algorithm:     stableleader.OmegaL,
		Link:          LinkModel{MeanDelay: 10 * time.Millisecond, Loss: 0.01},
		ProcessFaults: &Faults{MTBF: 3 * time.Minute, MTTR: 5 * time.Second},
		Duration:      20 * time.Minute,
		Seed:          12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Pleader < 0.9 {
		t.Errorf("availability %.4f with a candidate subset; want functioning elections", res.Metrics.Pleader)
	}
	if res.Metrics.Demotions != 0 {
		t.Errorf("unjustified demotions = %d with candidate subset", res.Metrics.Demotions)
	}
}

// TestStartupGraceAblation pins the motivation for the startup grace: a
// recovering process that immediately proclaims itself leader opens a
// split-leadership window — it joins the group disagreeing with everyone —
// which shows up as lost availability when recoveries are frequent and
// fast. With the grace the process discovers the incumbent first. (The
// mistake-rate metric is protected separately by incarnation-aware
// accounting; both variants must show zero unjustified demotions.)
func TestStartupGraceAblation(t *testing.T) {
	base := Scenario{
		N:             8,
		Algorithm:     stableleader.OmegaL,
		Link:          LinkModel{MeanDelay: 25 * time.Microsecond},
		ProcessFaults: &Faults{MTBF: 90 * time.Second, MTTR: 300 * time.Millisecond},
		Duration:      30 * time.Minute,
		Seed:          21,
	}
	with := base
	without := base
	without.DisableStartupGrace = true
	rWith, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	rWithout, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("with grace:    %v", rWith.Metrics)
	t.Logf("without grace: %v", rWithout.Metrics)
	if rWith.Metrics.Demotions != 0 || rWithout.Metrics.Demotions != 0 {
		t.Errorf("unjustified demotions: with=%d without=%d, want 0 for both",
			rWith.Metrics.Demotions, rWithout.Metrics.Demotions)
	}
	if rWith.Metrics.Pleader <= rWithout.Metrics.Pleader {
		t.Errorf("grace should improve availability under fast recoveries: with=%.4f without=%.4f",
			rWith.Metrics.Pleader, rWithout.Metrics.Pleader)
	}
}

// TestStabilityAcrossSeeds sweeps the paper's central claim over many
// independent runs: in lossy networks with the paper's fault rates, the
// stable services never demote a live leader, whatever the randomness. One
// seed could be lucky; ten make a statement (≈ 7 simulated hours each for
// S2 and S3, ≈ 800 workstation crashes total).
func TestStabilityAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation sweep")
	}
	for _, algo := range []stableleader.Algorithm{stableleader.OmegaLC, stableleader.OmegaL} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				res, err := Run(Scenario{
					N:             12,
					Algorithm:     algo,
					Link:          LinkModel{MeanDelay: 10 * time.Millisecond, Loss: 0.1},
					ProcessFaults: &Faults{MTBF: 600 * time.Second, MTTR: 5 * time.Second},
					Duration:      40 * time.Minute,
					Seed:          seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Metrics.Demotions != 0 {
					t.Errorf("seed %d: %d unjustified demotions (λu=%.2f/h); the paper reports zero",
						seed, res.Metrics.Demotions, res.Metrics.MistakesPerHour)
				}
				if res.Metrics.Pleader < 0.99 {
					t.Errorf("seed %d: availability %.4f, want ≥ 0.99", seed, res.Metrics.Pleader)
				}
			}
		})
	}
}
