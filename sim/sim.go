// Package sim runs the leader election service inside a deterministic
// virtual-time network simulator and measures the QoS metrics of the paper
// (leader recovery time, mistake rate, leader availability) together with
// the service's CPU and bandwidth costs.
//
// It replaces the paper's physical testbed: 12 workstations whose fault
// injectors dropped and delayed messages, killed and restarted service
// instances, and crashed links. A Scenario is a complete description of one
// such experiment cell; Run executes it; the Figure functions regenerate
// every figure of the paper's evaluation (Section 6). Results are
// reproducible: a scenario is a pure function of its Seed.
package sim

import (
	"errors"
	"fmt"
	"time"

	stableleader "stableleader"
	"stableleader/id"
	"stableleader/internal/clientcore"
	"stableleader/internal/core"
	"stableleader/internal/election"
	"stableleader/internal/metrics"
	"stableleader/internal/simnet"
	"stableleader/internal/subs"
	"stableleader/qos"
)

// LinkModel is the lossy-link behaviour of the paper's Section 6.1: iid
// message loss with probability Loss, exponential delay with mean MeanDelay.
type LinkModel struct {
	MeanDelay time.Duration
	Loss      float64
}

// String renders the paper's "(D, pL)" notation.
func (l LinkModel) String() string {
	d := l.MeanDelay.Seconds() * 1000
	if d == float64(int64(d)) {
		return fmt.Sprintf("(%dms, %g)", int64(d), l.Loss)
	}
	return fmt.Sprintf("(%gms, %g)", d, l.Loss)
}

// Faults is an exponential crash/recovery process (MTBF up, MTTR down).
type Faults struct {
	MTBF time.Duration
	MTTR time.Duration
}

// PartitionPlan cuts the group in two at a fixed virtual time and heals it
// later: every link between the sides drops all traffic in both directions,
// links within a side keep working. The minority side is the last Minority
// workstations by id — pair it with Scenario.Candidates to control whether
// any candidate is cut off.
type PartitionPlan struct {
	// At is when the partition starts, measured from the start of the run.
	At time.Duration
	// Heal is when the partition heals; zero (or ≤ At) makes it permanent.
	Heal time.Duration
	// Minority is how many workstations (the last by id) are isolated.
	// Values outside [1, N-1] default to N/2.
	Minority int
}

// RestartPlan gracefully restarts every workstation in turn: each process
// leaves (planned handover first if it leads and the plane is on), stays
// down for Downtime, and reboots with a fresh incarnation — a rolling
// upgrade across the whole group.
type RestartPlan struct {
	// Start is when the first process leaves, measured from the start of
	// the run.
	Start time.Duration
	// Every is the gap between consecutive departures.
	Every time.Duration
	// Downtime is how long each process stays down before rebooting.
	Downtime time.Duration
	// Rounds is how many full passes over the group to make (default 1).
	// Each pass displaces the current leader at least once, so more rounds
	// give the leaderless-window percentiles more samples.
	Rounds int
}

// Scenario describes one experiment cell.
type Scenario struct {
	// Name labels the cell in reports.
	Name string
	// N is the number of workstations (each runs one service instance and
	// one application process in the observed group).
	N int
	// Groups is how many groups every process joins (default 1). All
	// groups share the same peer set — the paper's shared-infrastructure
	// setting — and QoS metrics are observed on the first group; the
	// others exist to load the shared packet plane.
	Groups int
	// Candidates is how many of the N processes compete for leadership
	// (the first Candidates by id). Zero means all.
	Candidates int
	// Algorithm selects the election core.
	Algorithm stableleader.Algorithm
	// QoS is the failure detection requirement; zero means qos.Default().
	QoS qos.Spec
	// Link is the behaviour of every directed link.
	Link LinkModel
	// ProcessFaults, when non-nil, crashes and recovers every process.
	ProcessFaults *Faults
	// LinkFaults, when non-nil, crashes and recovers every directed link.
	LinkFaults *Faults
	// Duration is the simulated experiment length (after Warmup).
	Duration time.Duration
	// Warmup precedes measurement: group formation is excluded, like the
	// paper's steady-state measurements. Default 30s.
	Warmup time.Duration
	// Seed makes the run reproducible. Same scenario + same seed = same
	// result, bit for bit.
	Seed int64
	// HelloInterval overrides the gossip period (default 1s).
	HelloInterval time.Duration
	// DisableStartupGrace removes the join-time self-claim suppression;
	// for the ablation experiment only (see BenchmarkAblationStartupGrace).
	DisableStartupGrace bool
	// DisableCoalescing switches the outbound packet scheduler off: every
	// message ships as its own datagram, the pre-batching wire behaviour.
	// For the multigroup and client-fanout ablation experiments (it
	// applies to servers and simulated clients alike).
	DisableCoalescing bool
	// Clients is how many simulated non-member client processes consult
	// the service through the remote client plane. Each subscribes to
	// every group of the scenario across all N service endpoints
	// (spreading initial load, failing over on silence and tombstones).
	// Zero means no client plane.
	Clients int
	// ClientTTL is the lease the clients request (default 10s).
	ClientTTL time.Duration
	// ClientChurn, when non-nil, crashes and recovers every client with
	// the given exponential process — exercising server-side lease expiry
	// and client restarts under load.
	ClientChurn *Faults
	// Dup and Reorder extend every link with the injector's duplication and
	// hold-back knobs (see simnet.LinkModel); ReorderDelay tunes the
	// hold-back. All zero by default, which replays byte-identically with
	// pre-knob scenarios.
	Dup          float64
	Reorder      float64
	ReorderDelay time.Duration
	// ClockSkew, when nonzero, gives every workstation lifetime a fixed
	// clock offset drawn uniformly from [-ClockSkew, +ClockSkew]: its
	// timestamps (accusation times, heartbeat send times) shift while its
	// timers stay exact. Exercises the protocol's independence from
	// synchronized clocks.
	ClockSkew time.Duration
	// Partition, when non-nil, cuts the group in two and optionally heals.
	Partition *PartitionPlan
	// RollingRestart, when non-nil, gracefully restarts every workstation
	// in turn.
	RollingRestart *RestartPlan
	// DisableHandover turns off the warm-standby/planned-handover plane:
	// graceful departures fail over reactively (peers wait out the failure
	// detector). The before/after baseline of the failover experiment.
	DisableHandover bool
}

// withDefaults fills unset fields.
func (sc Scenario) withDefaults() Scenario {
	if sc.N == 0 {
		sc.N = 12
	}
	if sc.Groups <= 0 {
		sc.Groups = 1
	}
	if sc.Candidates <= 0 || sc.Candidates > sc.N {
		sc.Candidates = sc.N
	}
	if sc.QoS == (qos.Spec{}) {
		sc.QoS = qos.Default()
	}
	if sc.Link.MeanDelay <= 0 {
		sc.Link.MeanDelay = 25 * time.Microsecond
	}
	if sc.Warmup <= 0 {
		sc.Warmup = 30 * time.Second
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	return sc
}

// PerEventCPUCost converts protocol event counts (messages sent, messages
// received, timer fires) into CPU time for the paper-style "CPU % per
// workstation" figure. The 5µs constant is calibrated so that the paper's
// 12-workstation S2/S3 cells land near its reported 0.3%/0.04%; only the
// scaling *shape* (linear vs quadratic in group size) is meaningful.
const PerEventCPUCost = 5 * time.Microsecond

// Result is the outcome of one scenario run.
type Result struct {
	// Scenario echoes the (defaulted) input.
	Scenario Scenario
	// Metrics holds the paper's QoS metrics.
	Metrics metrics.Report
	// CPUPercent is the modelled CPU share per workstation.
	CPUPercent float64
	// KBPerSec is wire traffic (sent+received, one UDP/IP header per
	// datagram) per workstation per second, in KB/s.
	KBPerSec float64
	// MsgsPerSec is protocol messages (sent+received) per workstation per
	// second; messages inside a coalesced batch count individually.
	MsgsPerSec float64
	// DatagramsPerSec is datagrams (sent+received) per workstation per
	// second: the syscall/packet rate the coalescing plane minimises.
	DatagramsPerSec float64
	// TotalDatagramsSent and TotalMsgsSent are system-wide send totals —
	// servers and simulated clients together — the figure of merit for
	// the client-plane fan-out sweep.
	TotalDatagramsSent int64
	TotalMsgsSent      int64
	// EventsSimulated counts simulator callbacks executed.
	EventsSimulated int64
	// WallTime is how long the simulation took in real time.
	WallTime time.Duration
}

// groupID is the group every scenario elects in and observes.
const groupID id.Group = "g"

// extraGroup names the i-th additional group (zero-based) of a multigroup
// scenario.
func extraGroup(i int) id.Group { return id.Group(fmt.Sprintf("g%02d", i+2)) }

// procName returns the id of workstation i (zero-based). Ids sort in
// workstation order, which matters for OmegaID.
func procName(i int) id.Process { return id.Process(fmt.Sprintf("w%02d", i+1)) }

// clientName returns the id of simulated client i (zero-based).
func clientName(i int) id.Process { return id.Process(fmt.Sprintf("c%05d", i+1)) }

// allGroups lists every group of the scenario (the observed one first).
func (sc Scenario) allGroups() []id.Group {
	out := []id.Group{groupID}
	for i := 0; i < sc.Groups-1; i++ {
		out = append(out, extraGroup(i))
	}
	return out
}

// Run executes one scenario and returns its measurements.
func Run(sc Scenario) (Result, error) {
	sc = sc.withDefaults()
	if sc.Duration <= 0 {
		return Result{}, errors.New("sim: Scenario.Duration must be positive")
	}
	if err := sc.QoS.Validate(); err != nil {
		return Result{}, err
	}
	wallStart := time.Now()

	eng := simnet.NewEngine(sc.Seed)
	net := simnet.NewNetwork(eng, simnet.LinkModel{
		Loss:         sc.Link.Loss,
		MeanDelay:    sc.Link.MeanDelay,
		Dup:          sc.Dup,
		Reorder:      sc.Reorder,
		ReorderDelay: sc.ReorderDelay,
	})

	procs := make([]id.Process, sc.N)
	for i := range procs {
		procs[i] = procName(i)
		net.Attach(procs[i])
	}

	obs := metrics.NewObserver(groupID, simnet.Epoch().Add(sc.Warmup))
	cl := &cluster{sc: sc, eng: eng, net: net, obs: obs, procs: procs,
		runtimes:      make(map[id.Process]*simnet.NodeRuntime),
		nodes:         make(map[id.Process]*core.Node),
		crashed:       make(map[id.Process]bool),
		clientRTs:     make(map[id.Process]*simnet.NodeRuntime),
		clientCrashed: make(map[id.Process]bool)}

	// Start every service instance with a small jitter, as independent
	// workstations would boot.
	for i, p := range procs {
		p := p
		candidate := i < sc.Candidates
		startJitter := time.Duration(eng.Rand().Int63n(int64(100 * time.Millisecond)))
		eng.After(startJitter, func() { cl.start(p, candidate) })
	}

	// The simulated client population: non-member processes consulting
	// the service through the remote client plane, booting spread over a
	// few seconds (a thundering subscribe herd is not the steady state
	// the sweep measures).
	clients := make([]id.Process, sc.Clients)
	for i := range clients {
		clients[i] = clientName(i)
		net.Attach(clients[i])
	}
	for _, p := range clients {
		p := p
		startJitter := time.Duration(eng.Rand().Int63n(int64(3 * time.Second)))
		eng.After(startJitter, func() { cl.startClient(p) })
	}

	// Fault injection.
	if f := sc.ProcessFaults; f != nil {
		for _, p := range procs {
			p := p
			simnet.ScheduleFaults(eng, simnet.FaultPlan{MTBF: f.MTBF, MTTR: f.MTTR},
				func() { cl.crash(p) },
				func() { cl.recover(p) },
			)
		}
	}
	if f := sc.LinkFaults; f != nil {
		simnet.ScheduleAllLinkFaults(eng, net, procs,
			simnet.FaultPlan{MTBF: f.MTBF, MTTR: f.MTTR})
	}
	if f := sc.ClientChurn; f != nil {
		for _, p := range clients {
			p := p
			simnet.ScheduleFaults(eng, simnet.FaultPlan{MTBF: f.MTBF, MTTR: f.MTTR},
				func() { cl.crashClient(p) },
				func() { cl.recoverClient(p) },
			)
		}
	}
	if pp := sc.Partition; pp != nil {
		m := pp.Minority
		if m <= 0 || m >= sc.N {
			m = sc.N / 2
		}
		simnet.SchedulePartition(eng, net, procs[:sc.N-m], procs[sc.N-m:], pp.At, pp.Heal)
	}
	if rp := sc.RollingRestart; rp != nil {
		rounds := rp.Rounds
		if rounds <= 0 {
			rounds = 1
		}
		for r := 0; r < rounds; r++ {
			base := rp.Start + time.Duration(r*len(procs))*rp.Every
			for i, p := range procs {
				p := p
				at := base + time.Duration(i)*rp.Every
				eng.After(at, func() { cl.leave(p) })
				eng.After(at+rp.Downtime, func() { cl.recover(p) })
			}
		}
	}

	end := simnet.Epoch().Add(sc.Warmup + sc.Duration)
	eng.RunUntil(end)
	report := obs.Finish(eng.Now())

	// Cost accounting. Per-workstation figures cover the N service
	// endpoints only (the paper's per-workstation costs); the system-wide
	// send totals include the client population — the fan-out sweep's
	// figure of merit.
	isServer := make(map[id.Process]bool, len(procs))
	for _, p := range procs {
		isServer[p] = true
	}
	var msgs, datagrams, bytes, events int64
	var totalDgramsSent, totalMsgsSent int64
	for _, ep := range net.Endpoints() {
		c := ep.Counters()
		totalDgramsSent += c.DatagramsSent
		totalMsgsSent += c.MsgsSent
		if !isServer[ep.ID()] {
			continue
		}
		msgs += c.MsgsSent + c.MsgsRecv
		datagrams += c.DatagramsSent + c.DatagramsRecv
		bytes += c.BytesSent + c.BytesRecv
		events += c.MsgsSent + c.MsgsRecv + c.TimerFires
	}
	seconds := (sc.Warmup + sc.Duration).Seconds()
	n := float64(sc.N)
	res := Result{
		Scenario:           sc,
		Metrics:            report,
		CPUPercent:         100 * float64(events) * PerEventCPUCost.Seconds() / (n * seconds),
		KBPerSec:           float64(bytes) / n / seconds / 1024,
		MsgsPerSec:         float64(msgs) / n / seconds,
		DatagramsPerSec:    float64(datagrams) / n / seconds,
		TotalDatagramsSent: totalDgramsSent,
		TotalMsgsSent:      totalMsgsSent,
		EventsSimulated:    eng.EventsFired(),
		WallTime:           time.Since(wallStart),
	}
	return res, nil
}

// cluster manages process lifecycles inside one run.
type cluster struct {
	sc       Scenario
	eng      *simnet.Engine
	net      *simnet.Network
	obs      *metrics.Observer
	procs    []id.Process
	runtimes map[id.Process]*simnet.NodeRuntime
	nodes    map[id.Process]*core.Node
	crashed  map[id.Process]bool

	clientRTs     map[id.Process]*simnet.NodeRuntime
	clientCrashed map[id.Process]bool
}

// start boots a service instance for p (fresh incarnation). A boot racing
// an already-injected crash is suppressed (the workstation is down).
func (cl *cluster) start(p id.Process, candidate bool) {
	if cl.crashed[p] || cl.runtimes[p] != nil {
		return
	}
	rt := simnet.NewNodeRuntime(cl.net, p)
	cl.runtimes[p] = rt
	if d := cl.sc.ClockSkew; d > 0 {
		// Per-lifetime skew from the node-local stream: a skew of zero
		// draws nothing, so skew-free scenarios replay byte-identically.
		rt.SetSkew(time.Duration(rt.Rand().Int63n(int64(2*d)+1)) - d)
	}
	nodeOpts := []core.NodeOption{core.WithCoalescing(!cl.sc.DisableCoalescing)}
	if cl.sc.Clients > 0 {
		nodeOpts = append(nodeOpts, core.WithClientPlane(subs.Config{}))
	}
	node := core.NewNode(p, rt, nodeOpts...)
	cl.nodes[p] = node
	cl.net.SetUp(p, true, node)
	cl.obs.NodeUp(cl.eng.Now(), p, node.Incarnation())
	// A join is considered complete when the service first answers a
	// leader query (the observer handles that), or after this bound — a
	// genuinely leaderless group cannot hide behind "still joining".
	joinBound := 2 * cl.sc.QoS.DetectionTime
	cl.eng.After(joinBound, func() {
		if cl.runtimes[p] == rt {
			cl.obs.MarkJoined(cl.eng.Now(), p)
		}
	})
	opts := core.JoinOptions{
		Candidate:           candidate,
		Algorithm:           election.Kind(cl.sc.Algorithm),
		QoS:                 cl.sc.QoS,
		Seeds:               cl.procs,
		HelloInterval:       cl.sc.HelloInterval,
		DisableStartupGrace: cl.sc.DisableStartupGrace,
		DisableHandover:     cl.sc.DisableHandover,
		OnLeaderChange: func(li core.LeaderInfo) {
			cl.obs.LeaderView(cl.eng.Now(), p, li.Leader, li.Incarnation, li.Elected)
		},
	}
	if err := node.Join(groupID, opts); err != nil {
		panic(fmt.Sprintf("sim: join failed for %s: %v", p, err))
	}
	// The additional groups of a multigroup scenario load the shared
	// infrastructure (per-peer estimators, pacers, packet scheduler) with
	// the same peer set but are not observed.
	extra := opts
	extra.OnLeaderChange = nil
	for i := 0; i < cl.sc.Groups-1; i++ {
		if err := node.Join(extraGroup(i), extra); err != nil {
			panic(fmt.Sprintf("sim: join %s failed for %s: %v", extraGroup(i), p, err))
		}
	}
}

// crash kills p's service instance: its timers die, its endpoint goes
// down, in-flight messages to it will be dropped on delivery.
func (cl *cluster) crash(p id.Process) {
	cl.crashed[p] = true
	if rt := cl.runtimes[p]; rt != nil {
		rt.Shutdown()
		delete(cl.runtimes, p)
	}
	delete(cl.nodes, p)
	cl.net.SetUp(p, false, nil)
	cl.obs.NodeDown(cl.eng.Now(), p)
}

// leave shuts p down gracefully: every group is departed with a LEAVE —
// preceded by a planned handover when p leads and the plane is on — before
// the endpoint goes dark, so the farewell datagrams are already in flight.
func (cl *cluster) leave(p id.Process) {
	node := cl.nodes[p]
	if cl.crashed[p] || node == nil {
		return
	}
	cl.crashed[p] = true
	for _, g := range cl.sc.allGroups() {
		if err := node.Leave(g); err != nil {
			panic(fmt.Sprintf("sim: leave %s failed for %s: %v", g, p, err))
		}
	}
	if rt := cl.runtimes[p]; rt != nil {
		rt.Shutdown()
		delete(cl.runtimes, p)
	}
	delete(cl.nodes, p)
	cl.net.SetUp(p, false, nil)
	cl.obs.NodeLeft(cl.eng.Now(), p)
}

// recover restarts p with a new incarnation. Candidacy is preserved from
// the scenario definition.
func (cl *cluster) recover(p id.Process) {
	cl.crashed[p] = false
	candidate := false
	for i, q := range cl.procs {
		if q == p {
			candidate = i < cl.sc.Candidates
		}
	}
	cl.start(p, candidate)
}

// startClient boots one simulated client (fresh incarnation): it
// subscribes to every group of the scenario across all service endpoints.
// A boot racing an already-injected crash is suppressed.
func (cl *cluster) startClient(p id.Process) {
	if cl.clientCrashed[p] || cl.clientRTs[p] != nil {
		return
	}
	rt := simnet.NewNodeRuntime(cl.net, p)
	cl.clientRTs[p] = rt
	ttl := cl.sc.ClientTTL
	node := clientcore.NewNode(rt, clientcore.Config{
		Self:              p,
		Endpoints:         cl.procs,
		TTL:               ttl,
		DisableCoalescing: cl.sc.DisableCoalescing,
	})
	cl.net.SetUp(p, true, node)
	for _, g := range cl.sc.allGroups() {
		node.Subscribe(g)
	}
}

// crashClient kills one simulated client without goodbye: its lease must
// expire server-side.
func (cl *cluster) crashClient(p id.Process) {
	cl.clientCrashed[p] = true
	if rt := cl.clientRTs[p]; rt != nil {
		rt.Shutdown()
		delete(cl.clientRTs, p)
	}
	cl.net.SetUp(p, false, nil)
}

// recoverClient restarts a crashed client with a fresh incarnation (its
// new subscriptions supersede the stale server-side registrations).
func (cl *cluster) recoverClient(p id.Process) {
	cl.clientCrashed[p] = false
	cl.startClient(p)
}
