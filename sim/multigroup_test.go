package sim

import (
	"testing"
	"time"

	stableleader "stableleader"
)

// TestMultigroupCoalescingReduction is the acceptance property of the
// outbound packet plane: with 16 groups sharing one peer set, coalescing
// must cut steady-state datagrams/s per node by at least 4x versus the
// uncoalesced wire, without changing the elected outcome and without
// inflating protocol message counts beyond the pacer's early-send slack.
func TestMultigroupCoalescingReduction(t *testing.T) {
	run := func(disable bool) Result {
		res, err := Run(Scenario{
			Name:              "multigroup-accept",
			N:                 4,
			Groups:            16,
			Algorithm:         stableleader.OmegaLC,
			Duration:          2 * time.Minute,
			Seed:              9,
			DisableCoalescing: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on := run(false)
	off := run(true)
	t.Logf("coalesced:   %8.1f dgrams/s %8.1f msgs/s %7.2f KB/s", on.DatagramsPerSec, on.MsgsPerSec, on.KBPerSec)
	t.Logf("uncoalesced: %8.1f dgrams/s %8.1f msgs/s %7.2f KB/s", off.DatagramsPerSec, off.MsgsPerSec, off.KBPerSec)

	if on.DatagramsPerSec <= 0 || off.DatagramsPerSec <= 0 {
		t.Fatal("no traffic measured")
	}
	ratio := off.DatagramsPerSec / on.DatagramsPerSec
	if ratio < 4 {
		t.Errorf("datagram reduction = %.2fx, want >= 4x at 16 groups", ratio)
	}
	// Coalescing must also save wire bytes (shared headers), not just
	// syscalls.
	if on.KBPerSec >= off.KBPerSec {
		t.Errorf("coalesced traffic %.2f KB/s is not below uncoalesced %.2f KB/s", on.KBPerSec, off.KBPerSec)
	}
	// The pacer's quarter-interval slack bounds the heartbeat inflation:
	// well under the 4/3 worst case in steady state, and never a
	// reduction to below the uncoalesced message count's neighbourhood.
	if on.MsgsPerSec > off.MsgsPerSec*1.34 {
		t.Errorf("coalescing inflated msgs/s from %.1f to %.1f (> 4/3 bound)", off.MsgsPerSec, on.MsgsPerSec)
	}
	// Leadership quality must be unaffected: the observed group stays
	// available and makes no mistakes in either variant.
	for _, r := range []Result{on, off} {
		if r.Metrics.Pleader < 0.999 {
			t.Errorf("%s: Pleader = %.6f, want ~1 on a clean LAN", r.Scenario.Name, r.Metrics.Pleader)
		}
		if r.Metrics.Demotions != 0 {
			t.Errorf("%s: %d demotions on a clean LAN", r.Scenario.Name, r.Metrics.Demotions)
		}
	}
}

// TestMultigroupExperimentDispatch smoke-tests the -figure multigroup
// wiring at a tiny scale.
func TestMultigroupExperimentDispatch(t *testing.T) {
	exp, err := RunExperiment("multigroup", Options{
		Duration: 45 * time.Second,
		Warmup:   15 * time.Second,
		N:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "multigroup" || len(exp.Cells) != 8 {
		t.Fatalf("experiment = %s with %d cells, want multigroup with 8", exp.ID, len(exp.Cells))
	}
	if s := exp.String(); s == "" {
		t.Error("empty rendering")
	}
}
