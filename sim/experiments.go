package sim

import (
	"fmt"
	"io"
	"strings"
	"time"

	stableleader "stableleader"
	"stableleader/qos"
)

// Options tunes how the paper's experiments are executed. The paper ran
// each configuration for one to five days on real hardware; in virtual time
// a default of one simulated hour per cell reproduces every qualitative
// result in seconds-to-minutes of real time. Raise Duration for tighter
// confidence intervals.
type Options struct {
	// Duration is the measured (post-warmup) simulated time per cell
	// (default 1h).
	Duration time.Duration
	// Warmup is excluded from measurement (default 30s).
	Warmup time.Duration
	// N is the group size where the experiment does not sweep it
	// (default 12, the paper's cluster).
	N int
	// Seed derives each cell's seed (default 1).
	Seed int64
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = time.Hour
	}
	if o.Warmup <= 0 {
		o.Warmup = 30 * time.Second
	}
	if o.N <= 0 {
		o.N = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Cell is one measured configuration of an experiment.
type Cell struct {
	// Series names the service variant ("S1 (omega-id)", ...).
	Series string
	// Setting names the x-axis point ("(10ms, 0.01)", "n=8", ...).
	Setting string
	// Result is the measurement.
	Result Result
}

// Experiment is one regenerated figure of the paper.
type Experiment struct {
	// ID is the figure identifier ("fig3" ... "fig8", "headline").
	ID string
	// Title describes the experiment.
	Title string
	// Notes records what shape the paper reports for this figure.
	Notes string
	// Cells holds every measured configuration.
	Cells []Cell
}

// NamedLink pairs the paper's "(D, pL)" label with a link model.
type NamedLink struct {
	Name string
	Link LinkModel
}

// LossyNetworks returns the five lossy-link behaviours of Figures 3-5: the
// real LAN plus the four worst simulated (D, pL) pairs.
func LossyNetworks() []NamedLink {
	return []NamedLink{
		{"(0.025ms, 0)", LinkModel{MeanDelay: 25 * time.Microsecond, Loss: 0}},
		{"(10ms, 0.01)", LinkModel{MeanDelay: 10 * time.Millisecond, Loss: 0.01}},
		{"(100ms, 0.01)", LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.01}},
		{"(10ms, 0.1)", LinkModel{MeanDelay: 10 * time.Millisecond, Loss: 0.1}},
		{"(100ms, 0.1)", LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.1}},
	}
}

// PaperProcessFaults is the workstation behaviour of Section 6.1: crashes
// every 10 minutes on average, recovery after 5 seconds on average.
func PaperProcessFaults() *Faults {
	return &Faults{MTBF: 600 * time.Second, MTTR: 5 * time.Second}
}

// service is a series descriptor.
type service struct {
	name string
	algo stableleader.Algorithm
}

var (
	s1 = service{"S1 (omega-id)", stableleader.OmegaID}
	s2 = service{"S2 (omega-lc)", stableleader.OmegaLC}
	s3 = service{"S3 (omega-l)", stableleader.OmegaL}
)

// runCells executes one scenario per (service, setting) pair.
func runCells(o Options, exp *Experiment, services []service, settings []NamedLink,
	mutate func(sc *Scenario, setting NamedLink)) error {
	o = o.withDefaults()
	seed := o.Seed
	for _, svc := range services {
		for _, setting := range settings {
			seed++
			sc := Scenario{
				Name:          exp.ID + "/" + svc.name + "/" + setting.Name,
				N:             o.N,
				Algorithm:     svc.algo,
				Link:          setting.Link,
				ProcessFaults: PaperProcessFaults(),
				Duration:      o.Duration,
				Warmup:        o.Warmup,
				Seed:          seed,
			}
			if mutate != nil {
				mutate(&sc, setting)
			}
			res, err := Run(sc)
			if err != nil {
				return fmt.Errorf("%s %s %s: %w", exp.ID, svc.name, setting.Name, err)
			}
			exp.Cells = append(exp.Cells, Cell{Series: svc.name, Setting: setting.Name, Result: res})
			if o.Progress != nil {
				m := res.Metrics
				fmt.Fprintf(o.Progress,
					"%-8s %-14s %-14s Tr=%6.3fs λu=%6.2f/h Pleader=%8.4f%% cpu=%6.3f%% %7.2fKB/s (wall %v)\n",
					exp.ID, svc.name, setting.Name, m.TrMean.Seconds(), m.MistakesPerHour,
					100*m.Pleader, res.CPUPercent, res.KBPerSec, res.WallTime.Round(time.Millisecond))
			}
		}
	}
	return nil
}

// Figure3 reproduces Figure 3: S1's leader recovery time and mistake rate
// across the five lossy networks.
func Figure3(o Options) (*Experiment, error) {
	exp := &Experiment{
		ID:    "fig3",
		Title: "S1 (omega-id) in lossy networks: Tr and mistake rate",
		Notes: "Paper: Tr ≈ 0.81–0.94s across all networks; λu ≈ 6/hour (every recovery of a smaller-id process demotes the leader).",
	}
	err := runCells(o, exp, []service{s1}, LossyNetworks(), nil)
	return exp, err
}

// Figure4 reproduces Figure 4: S1 versus S2 across the five lossy networks.
func Figure4(o Options) (*Experiment, error) {
	exp := &Experiment{
		ID:    "fig4",
		Title: "S1 vs S2 in lossy networks: Tr, mistake rate, availability",
		Notes: "Paper: S2 makes zero mistakes (λu = 0); S2's Tr is slightly larger than S1's; S2's availability is higher everywhere (99.82%+).",
	}
	err := runCells(o, exp, []service{s1, s2}, LossyNetworks(), nil)
	return exp, err
}

// Figure5 reproduces Figure 5: S2 versus S3 across the five lossy networks.
func Figure5(o Options) (*Experiment, error) {
	exp := &Experiment{
		ID:    "fig5",
		Title: "S2 vs S3 in lossy networks: Tr and availability (both have λu = 0)",
		Notes: "Paper: the message-efficient S3 is essentially as good as S2 under lossy links; both ≈ 1s recovery and ≥ 99.82% availability.",
	}
	err := runCells(o, exp, []service{s2, s3}, LossyNetworks(), nil)
	return exp, err
}

// Figure6 reproduces Figure 6: CPU and bandwidth overhead of S2 and S3 as
// the group grows (4, 8, 12 workstations) on the real LAN and on the worst
// lossy network.
func Figure6(o Options) (*Experiment, error) {
	exp := &Experiment{
		ID:    "fig6",
		Title: "S2 vs S3 overhead scaling with group size",
		Notes: "Paper: S2's CPU and traffic grow ~quadratically with n, S3's ~linearly; at n=12 lossy, S2 ≈ 0.3% CPU / 62.4KB/s vs S3 ≈ 0.04% / 6.5KB/s. Worse networks cost more.",
	}
	nets := []NamedLink{
		{"(0.025ms, 0)", LinkModel{MeanDelay: 25 * time.Microsecond, Loss: 0}},
		{"(100ms, 0.1)", LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.1}},
	}
	var settings []NamedLink
	for _, n := range []int{4, 8, 12} {
		for _, net := range nets {
			settings = append(settings, NamedLink{
				Name: fmt.Sprintf("n=%d %s", n, net.Name),
				Link: net.Link,
			})
		}
	}
	err := runCells(o, exp, []service{s2, s3}, settings, func(sc *Scenario, setting NamedLink) {
		var n int
		if _, err := fmt.Sscanf(setting.Name, "n=%d", &n); err == nil {
			sc.N = n
		}
	})
	return exp, err
}

// Figure7 reproduces Figure 7: S2 versus S3 when links crash outright. Each
// directed link disconnects on average every 10, 5, or 1 minutes for an
// average of 3 seconds — long enough to defeat the 1s detection bound.
func Figure7(o Options) (*Experiment, error) {
	exp := &Experiment{
		ID:    "fig7",
		Title: "S2 vs S3 with crash-prone links: Tr, mistake rate, availability",
		Notes: "Paper: S2 stays available (98.78% even at 1-minute link crashes) thanks to leader forwarding; S3 degrades to 77.42% and its Tr grows to ~3s; both now make unavoidable mistakes.",
	}
	settings := []NamedLink{
		{"(600s, 3s)", LAN().Link},
		{"(300s, 3s)", LAN().Link},
		{"(60s, 3s)", LAN().Link},
	}
	uptimes := map[string]time.Duration{
		"(600s, 3s)": 600 * time.Second,
		"(300s, 3s)": 300 * time.Second,
		"(60s, 3s)":  60 * time.Second,
	}
	err := runCells(o, exp, []service{s2, s3}, settings, func(sc *Scenario, setting NamedLink) {
		sc.LinkFaults = &Faults{MTBF: uptimes[setting.Name], MTTR: 3 * time.Second}
	})
	return exp, err
}

// Figure8 reproduces Figure 8: the effect of the failure detector's
// detection-time bound TdU on the QoS of S2 and S3, on the real LAN.
func Figure8(o Options) (*Experiment, error) {
	exp := &Experiment{
		ID:    "fig8",
		Title: "Effect of the FD detection bound TdU on S2 and S3",
		Notes: "Paper: Tr tracks just below TdU (detection dominates recovery) and availability improves proportionally as TdU shrinks; the detector costs more at small TdU.",
	}
	var settings []NamedLink
	for _, td := range []time.Duration{
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		750 * time.Millisecond, time.Second,
	} {
		settings = append(settings, NamedLink{Name: fmt.Sprintf("TdU=%v", td), Link: LAN().Link})
	}
	bounds := map[string]time.Duration{
		"TdU=100ms": 100 * time.Millisecond,
		"TdU=250ms": 250 * time.Millisecond,
		"TdU=500ms": 500 * time.Millisecond,
		"TdU=750ms": 750 * time.Millisecond,
		"TdU=1s":    time.Second,
	}
	err := runCells(o, exp, []service{s2, s3}, settings, func(sc *Scenario, setting NamedLink) {
		spec := qos.Default()
		spec.DetectionTime = bounds[setting.Name]
		sc.QoS = spec
	})
	return exp, err
}

// LAN is the named model of the paper's physical network.
func LAN() NamedLink {
	return NamedLink{Name: "(0.025ms, 0)", Link: LinkModel{MeanDelay: 25 * time.Microsecond}}
}

// Headline reproduces the introduction's summary numbers: all three
// services on the worst lossy network (12 workstations, crash every 10
// minutes, every 10th message lost, 100ms mean delay).
func Headline(o Options) (*Experiment, error) {
	exp := &Experiment{
		ID:    "headline",
		Title: "Section 1 headline scenario: (100ms, 0.1), crashes every 10 minutes",
		Notes: "Paper: S2/S3 never demote a live leader; availability 99.82%/99.84%; S3 costs 0.04% CPU and 6.48KB/s per workstation, S2 0.3% and 62.38KB/s.",
	}
	worst := []NamedLink{{"(100ms, 0.1)", LinkModel{MeanDelay: 100 * time.Millisecond, Loss: 0.1}}}
	err := runCells(o, exp, []service{s1, s2, s3}, worst, nil)
	return exp, err
}

// multigroupCap bounds the per-cell duration of the multigroup sweep: the
// 64-group cells simulate tens of thousands of messages per second, and
// the datagram-rate comparison reaches steady state within minutes.
const multigroupCap = 10 * time.Minute

// Multigroup measures the outbound packet plane: every workstation joins
// 1→64 groups sharing the same peer set (the paper's shared-infrastructure
// deployment), with the coalescing scheduler on versus off. The figure of
// merit is datagrams/s per node — what the batch envelope collapses — next
// to KB/s (header savings) and msgs/s (protocol cost, which coalescing
// must not inflate beyond the pacer's early-send slack).
func Multigroup(o Options) (*Experiment, error) {
	o = o.withDefaults()
	if o.Duration > multigroupCap {
		o.Duration = multigroupCap
	}
	exp := &Experiment{
		ID:    "multigroup",
		Title: "Outbound packet plane: groups-per-node sweep, coalescing on vs off",
		Notes: "Expected: uncoalesced datagrams/s grows ~linearly with groups; coalescing collapses all same-peer traffic to ~one datagram per heartbeat interval (>=4x fewer datagrams at 16 groups), at slightly higher msgs/s from heartbeat alignment.",
	}
	seed := o.Seed
	for _, variant := range []struct {
		series  string
		disable bool
	}{{"coalesced", false}, {"uncoalesced", true}} {
		for _, groups := range []int{1, 4, 16, 64} {
			seed++
			sc := Scenario{
				Name:              fmt.Sprintf("multigroup/%s/groups=%d", variant.series, groups),
				N:                 o.N,
				Groups:            groups,
				Algorithm:         stableleader.OmegaLC, // all-to-all heartbeats: the stress case
				Link:              LAN().Link,
				Duration:          o.Duration,
				Warmup:            o.Warmup,
				Seed:              seed,
				DisableCoalescing: variant.disable,
			}
			res, err := Run(sc)
			if err != nil {
				return nil, fmt.Errorf("multigroup %s groups=%d: %w", variant.series, groups, err)
			}
			exp.Cells = append(exp.Cells, Cell{
				Series:  variant.series,
				Setting: fmt.Sprintf("groups=%d", groups),
				Result:  res,
			})
			if o.Progress != nil {
				fmt.Fprintf(o.Progress,
					"%-10s %-12s %-10s dgrams/s=%8.1f msgs/s=%8.1f %8.2fKB/s (wall %v)\n",
					exp.ID, variant.series, fmt.Sprintf("groups=%d", groups),
					res.DatagramsPerSec, res.MsgsPerSec, res.KBPerSec,
					res.WallTime.Round(time.Millisecond))
			}
		}
	}
	return exp, nil
}

// clientsCap bounds the per-cell duration of the client-fanout sweep: a
// thousand simulated clients generate hundreds of thousands of events per
// simulated minute, and the datagram-rate comparison is steady-state
// within a few lease periods.
const clientsCap = 2 * time.Minute

// ClientFanout measures the remote client plane's fan-out geometry: 3
// service nodes serving 8 groups to a growing population of simulated
// subscribers (each subscribed to every group), with the coalescing
// scheduler on versus off on both sides of the socket. The figure of
// merit is system-wide datagrams/s: coalescing collapses each client's
// per-group snapshots, renewals and subscribes into per-client datagrams,
// so the reduction approaches the group count.
func ClientFanout(o Options) (*Experiment, error) {
	o = o.withDefaults()
	if o.Duration > clientsCap {
		o.Duration = clientsCap
	}
	exp := &Experiment{
		ID:    "clients",
		Title: "Client plane fan-out: subscriber sweep, coalescing on vs off",
		Notes: "Expected: uncoalesced datagrams/s grows with clients x groups; coalescing collapses each client's 8 per-group messages into ~1 datagram per cadence (>=4x fewer system-wide datagrams at 1k clients).",
	}
	const (
		servers = 3
		groups  = 8
	)
	seed := o.Seed
	for _, variant := range []struct {
		series  string
		disable bool
	}{{"coalesced", false}, {"uncoalesced", true}} {
		for _, clients := range []int{100, 300, 1000} {
			seed++
			sc := Scenario{
				Name:              fmt.Sprintf("clients/%s/clients=%d", variant.series, clients),
				N:                 servers,
				Groups:            groups,
				Clients:           clients,
				Algorithm:         stableleader.OmegaL,
				Link:              LAN().Link,
				Duration:          o.Duration,
				Warmup:            o.Warmup,
				Seed:              seed,
				DisableCoalescing: variant.disable,
			}
			res, err := Run(sc)
			if err != nil {
				return nil, fmt.Errorf("clients %s clients=%d: %w", variant.series, clients, err)
			}
			exp.Cells = append(exp.Cells, Cell{
				Series:  variant.series,
				Setting: fmt.Sprintf("clients=%d", clients),
				Result:  res,
			})
			if o.Progress != nil {
				secs := (res.Scenario.Warmup + res.Scenario.Duration).Seconds()
				fmt.Fprintf(o.Progress,
					"%-10s %-12s %-14s total dgrams/s=%9.1f total msgs/s=%9.1f (wall %v)\n",
					exp.ID, variant.series, fmt.Sprintf("clients=%d", clients),
					float64(res.TotalDatagramsSent)/secs, float64(res.TotalMsgsSent)/secs,
					res.WallTime.Round(time.Millisecond))
			}
		}
	}
	return exp, nil
}

// failoverCap bounds the per-cell duration of the failover sweep: one
// rolling restart of the whole group plus a partition/heal cycle reach
// steady state well within five simulated minutes.
const failoverCap = 5 * time.Minute

// Failover measures the warm-standby/planned-handover plane, which the
// paper's reactive design lacks: the leaderless window a planned departure
// leaves behind, with the standby on versus off (the reactive baseline
// waits out the failure detector), plus the split-brain guard under a
// partition/heal cycle and under skewed workstation clocks.
func Failover(o Options) (*Experiment, error) {
	o = o.withDefaults()
	if o.Duration > failoverCap {
		o.Duration = failoverCap
	}
	exp := &Experiment{
		ID:    "failover",
		Title: "Planned handover: leaderless window and split-brain guard",
		Notes: "Expected: the warm standby turns every planned departure into ~one message delay of leaderlessness (p99 >=10x shorter than the reactive baseline's detection-bound wait); dual-leader time stays zero under partition/heal and clock skew.",
	}
	// The restart cadence derives from the cell duration so the group is
	// rolled over twice inside the measured window (each pass displaces
	// the leader at least once).
	const rounds = 2
	every := (o.Duration - 20*time.Second) / time.Duration(rounds*o.N+1)
	if every < 5*time.Second {
		every = 5 * time.Second
	}
	rolling := func() *RestartPlan {
		return &RestartPlan{
			Start: o.Warmup + 10*time.Second, Every: every,
			Downtime: 5 * time.Second, Rounds: rounds,
		}
	}
	settings := []struct {
		name   string
		mutate func(sc *Scenario)
	}{
		{"rolling-restart", func(sc *Scenario) { sc.RollingRestart = rolling() }},
		{"partition-heal", func(sc *Scenario) {
			// The follower minority is severed and healed; candidates all
			// stay on the majority side, so the group keeps one leader and
			// the isolated followers must re-adopt it on heal.
			m := sc.N / 3
			if m < 1 {
				m = 1
			}
			sc.Candidates = sc.N - m
			sc.Partition = &PartitionPlan{
				At:       o.Warmup + o.Duration/3,
				Heal:     o.Warmup + 2*o.Duration/3,
				Minority: m,
			}
		}},
		{"clock-skew", func(sc *Scenario) {
			sc.ClockSkew = 200 * time.Millisecond
			sc.RollingRestart = rolling()
		}},
	}
	seed := o.Seed
	for _, variant := range []struct {
		series  string
		disable bool
	}{{"handover", false}, {"reactive", true}} {
		for _, s := range settings {
			seed++
			sc := Scenario{
				Name:            fmt.Sprintf("failover/%s/%s", variant.series, s.name),
				N:               o.N,
				Algorithm:       stableleader.OmegaL,
				Link:            LAN().Link,
				Duration:        o.Duration,
				Warmup:          o.Warmup,
				Seed:            seed,
				DisableHandover: variant.disable,
			}
			s.mutate(&sc)
			res, err := Run(sc)
			if err != nil {
				return nil, fmt.Errorf("failover %s %s: %w", variant.series, s.name, err)
			}
			exp.Cells = append(exp.Cells, Cell{Series: variant.series, Setting: s.name, Result: res})
			if o.Progress != nil {
				m := res.Metrics
				fmt.Fprintf(o.Progress,
					"%-10s %-10s %-16s leaderless p50=%8v p99=%8v (%d windows) dual=%v (wall %v)\n",
					exp.ID, variant.series, s.name,
					m.LeaderlessP50.Round(time.Millisecond), m.LeaderlessP99.Round(time.Millisecond),
					len(m.Leaderless), m.DualLeaderTime, res.WallTime.Round(time.Millisecond))
			}
		}
	}
	return exp, nil
}

// Experiments lists every available experiment id.
func Experiments() []string {
	return []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "headline", "multigroup", "clients", "failover"}
}

// RunExperiment dispatches by figure id.
func RunExperiment(figID string, o Options) (*Experiment, error) {
	switch figID {
	case "fig3", "3":
		return Figure3(o)
	case "fig4", "4":
		return Figure4(o)
	case "fig5", "5":
		return Figure5(o)
	case "fig6", "6":
		return Figure6(o)
	case "fig7", "7":
		return Figure7(o)
	case "fig8", "8":
		return Figure8(o)
	case "headline":
		return Headline(o)
	case "multigroup":
		return Multigroup(o)
	case "clients":
		return ClientFanout(o)
	case "failover":
		return Failover(o)
	default:
		return nil, fmt.Errorf("sim: unknown experiment %q (have %s)",
			figID, strings.Join(Experiments(), ", "))
	}
}

// String renders the experiment as an aligned text table with the same
// series/settings/metrics the paper's figure reports.
func (e *Experiment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
	if e.Notes != "" {
		fmt.Fprintf(&b, "   %s\n", e.Notes)
	}
	fmt.Fprintf(&b, "%-16s %-20s %9s %9s %9s %10s %8s %10s %8s %9s\n",
		"series", "setting", "Tr(s)", "±95%", "λu(/h)", "Pleader(%)", "CPU(%)", "KB/s", "msgs/s", "dgrams/s")
	for _, c := range e.Cells {
		m := c.Result.Metrics
		fmt.Fprintf(&b, "%-16s %-20s %9.3f %9.3f %9.2f %10.4f %8.3f %10.2f %8.1f %9.1f\n",
			c.Series, c.Setting,
			m.TrMean.Seconds(), m.TrCI95.Seconds(), m.MistakesPerHour,
			100*m.Pleader, c.Result.CPUPercent, c.Result.KBPerSec, c.Result.MsgsPerSec,
			c.Result.DatagramsPerSec)
	}
	return b.String()
}
