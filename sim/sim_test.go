package sim

import (
	"testing"
	"time"

	stableleader "stableleader"
)

// TestSmokeStableNetwork checks the whole stack end to end on a clean LAN:
// every algorithm must elect a leader quickly and keep it for the whole run
// with no demotions and availability near 1.
func TestSmokeStableNetwork(t *testing.T) {
	for _, algo := range []stableleader.Algorithm{
		stableleader.OmegaL, stableleader.OmegaLC, stableleader.OmegaID,
	} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			res, err := Run(Scenario{
				Name:      "smoke",
				N:         5,
				Algorithm: algo,
				Duration:  2 * time.Minute,
				Seed:      42,
			})
			if err != nil {
				t.Fatal(err)
			}
			m := res.Metrics
			if m.Pleader < 0.999 {
				t.Errorf("Pleader = %.6f, want >= 0.999", m.Pleader)
			}
			if m.Demotions != 0 {
				t.Errorf("demotions = %d, want 0", m.Demotions)
			}
			if m.TrSamples != 0 {
				t.Errorf("Tr samples = %d, want 0 (no crashes injected)", m.TrSamples)
			}
			t.Logf("%s: %v cpu=%.4f%% traffic=%.2fKB/s msgs=%.1f/s events=%d wall=%v",
				algo, m, res.CPUPercent, res.KBPerSec, res.MsgsPerSec,
				res.EventsSimulated, res.WallTime)
		})
	}
}

// TestSmokeCrashRecovery checks that leader crashes are detected and
// recovered within the QoS bound in a small cluster.
func TestSmokeCrashRecovery(t *testing.T) {
	res, err := Run(Scenario{
		Name:          "smoke-crash",
		N:             5,
		Algorithm:     stableleader.OmegaL,
		Duration:      10 * time.Minute,
		ProcessFaults: &Faults{MTBF: 2 * time.Minute, MTTR: 5 * time.Second},
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.TrSamples == 0 {
		t.Fatal("expected leader crashes to be observed")
	}
	if m.TrMean <= 0 || m.TrMean > 2*time.Second {
		t.Errorf("TrMean = %v, want within (0, 2s]", m.TrMean)
	}
	if m.Pleader < 0.95 {
		t.Errorf("Pleader = %.4f, want >= 0.95", m.Pleader)
	}
	t.Logf("%v cpu=%.4f%% traffic=%.2fKB/s wall=%v", m, res.CPUPercent, res.KBPerSec, res.WallTime)
}
